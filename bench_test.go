package overlay

// Benchmark harness: one bench target per experiment in DESIGN.md §3.
// Each bench regenerates its experiment's table (printed once per run
// via b.Logf at -v) and times the underlying workload so -benchmem
// reports the cost profile. EXPERIMENTS.md records the measured
// outputs against the paper's claims; cmd/benchharness prints the same
// tables standalone.

import (
	"testing"

	"overlay/internal/experiments"
	"overlay/internal/overlays"
)

const benchSeed = 2021 // PODC year; fixed for reproducibility

func logTable(b *testing.B, t *experiments.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", t)
}

func BenchmarkE1_RoundsVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E1RoundsVsN([]int{64, 256, 1024}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE2_MessageComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E2Messages([]int{64, 256, 1024}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE3_ConductanceGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E3Conductance(512, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE4_TokenLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4TokenLoad(512, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE5_TreeQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5TreeQuality([]int{64, 256, 1024}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE6_VsSupernodeBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E6Baseline([]int{64, 256, 1024}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE7_ConnectedComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E7CC(512, []int{16, 32, 64, 128, 256}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE8_SpanningTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E8SpanningTree([]int{64, 256, 1024}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE9_Biconnectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E9Biconnectivity(benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE10_MIS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E10MIS(400, []int{2, 4, 8, 16, 32}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkE11_Spanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E11Spanner([]int{128, 256, 512}, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

// BenchmarkE12_ScaleSweep drives the full message-level pipeline at
// 4k/16k/64k nodes. One iteration is minutes of simulated traffic; run
// it with -benchtime=1x (see the Makefile's bench-scale target).
func BenchmarkE12_ScaleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E12ScaleSweep([]int{4096, 16384, 65536}, benchSeed, 0)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

// Micro-benchmarks of the core operations, for profiling the library
// itself rather than regenerating experiment tables.

func BenchmarkBuildTreeFast_1k(b *testing.B) {
	g := lineInput(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(g, &Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTreeMessageLevel_256(b *testing.B) {
	g := lineInput(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(g, &Options{Seed: uint64(i), MessageLevel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTreeMessageLevel_4096(b *testing.B) {
	g := lineInput(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(g, &Options{Seed: uint64(i), MessageLevel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionEpoch measures one live-maintenance epoch (2% join
// + 2% leave, patch path) against a session opened over a 1k
// message-level build; the build and open are setup, the epoch repair
// is the measured op. make bench runs it and cmd/benchharness tracks
// the same operation at n=4096 in BENCH_results.json.
func BenchmarkSessionEpoch(b *testing.B) {
	res, err := BuildTree(lineInput(1024), &Options{Seed: 7, MessageLevel: true})
	if err != nil {
		b.Fatal(err)
	}
	plan := &ChurnPlan{Seed: 9, Epochs: 1, JoinFrac: 0.02, LeaveFrac: 0.02}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := Open(res, nil)
		if err != nil {
			b.Fatal(err)
		}
		joins, leaves := plan.Epoch(0, sess.Members(), sess.NextID())
		bill, err := sess.ApplyEpoch(joins, leaves)
		if err != nil {
			b.Fatal(err)
		}
		if bill.Rebuilt {
			b.Fatal("bench epoch unexpectedly rebuilt")
		}
	}
}

// BenchmarkSessionEpochMeasured_4096 measures one live-maintenance
// epoch with Measured accounting: the repair runs as a real wire
// protocol on the engine instead of being charged analytically, so
// this tracks the epoch-repair protocol's end-to-end cost at the
// benchharness scale (cmd/benchguard fences the matching
// SessionEpochMeasured_4096_x10 row of BENCH_results.json).
func BenchmarkSessionEpochMeasured_4096(b *testing.B) {
	res, err := BuildTree(lineInput(4096), &Options{Seed: 7, MessageLevel: true})
	if err != nil {
		b.Fatal(err)
	}
	plan := &ChurnPlan{Seed: 9, Epochs: 1, JoinFrac: 0.02, LeaveFrac: 0.02}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := Open(res, &SessionOptions{
			Accounting: Measured,
			Build:      Options{Seed: 7, MessageLevel: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		joins, leaves := plan.Epoch(0, sess.Members(), sess.NextID())
		bill, err := sess.ApplyEpoch(joins, leaves)
		if err != nil {
			b.Fatal(err)
		}
		if bill.Rebuilt || bill.Path != "patch/measured" {
			b.Fatalf("bench epoch took path %q (rebuilt=%v), want patch/measured", bill.Path, bill.Rebuilt)
		}
	}
}

// BenchmarkSessionEpochChordReads measures repeated Chord-view reads
// between epochs — the overlayd hot path the per-epoch derived-view
// cache exists for: every read after the first returns the cached
// global-identifier edge list under RLock. Contrast with
// BenchmarkSessionEpochChordReadsUncached below, which pays the
// pre-cache cost on every read.
func BenchmarkSessionEpochChordReads(b *testing.B) {
	res, err := BuildTree(lineInput(4096), &Options{Seed: 7, MessageLevel: true})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := Open(res, nil)
	if err != nil {
		b.Fatal(err)
	}
	sess.Chord() // prime the per-epoch cache; reads are the measured op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(sess.Chord()) == 0 {
			b.Fatal("empty chord view")
		}
	}
}

// BenchmarkSessionEpochChordReadsUncached recomputes the O(n log n)
// finger edge list and its global-identifier mapping on every read —
// exactly what Session.Chord did before the per-epoch cache. The gap
// against BenchmarkSessionEpochChordReads is the repeated-read win.
func BenchmarkSessionEpochChordReadsUncached(b *testing.B) {
	res, err := BuildTree(lineInput(4096), &Options{Seed: 7, MessageLevel: true})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := Open(res, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		members := sess.Members()
		local := overlays.Chord(sess.Tree().NodeAt).Edges()
		out := make([][2]int, len(local))
		for j, e := range local {
			out[j] = [2]int{members[e[0]], members[e[1]]}
		}
		if len(out) == 0 {
			b.Fatal("empty chord view")
		}
	}
}

func BenchmarkSpanningTree_grid(b *testing.B) {
	g := NewGraph(256)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if c+1 < 16 {
				g.AddEdge(r*16+c, r*16+c+1)
			}
			if r+1 < 16 {
				g.AddEdge(r*16+c, (r+1)*16+c)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SpanningTree(g, &Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIS_grid(b *testing.B) {
	g := NewGraph(400)
	for r := 0; r < 20; r++ {
		for c := 0; c < 20; c++ {
			if c+1 < 20 {
				g.AddEdge(r*20+c, r*20+c+1)
			}
			if r+1 < 20 {
				g.AddEdge(r*20+c, (r+1)*20+c)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MIS(g, &Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the calibrated design choices (DESIGN.md §4).

func BenchmarkA1_WalkLengthAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationWalkLength(256, []int{2, 4, 8, 16, 32}, 5, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}

func BenchmarkA2_DeltaAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationDelta(256, []int{2, 4, 8, 16}, 5, benchSeed)
		if i == 0 {
			logTable(b, t, err)
		}
	}
}
