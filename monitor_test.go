package overlay

import "testing"

func TestMonitorCountsAndBipartite(t *testing.T) {
	// Even ring: bipartite.
	even := NewGraph(64)
	for i := 0; i < 64; i++ {
		even.AddEdge(i, (i+1)%64)
	}
	res, err := Monitor(even, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCount != 64 || res.EdgeCount != 64 {
		t.Errorf("counts = %d nodes %d edges, want 64/64", res.NodeCount, res.EdgeCount)
	}
	if !res.IsBipartite {
		t.Error("even ring reported non-bipartite")
	}

	// Odd ring: not bipartite.
	odd := NewGraph(63)
	for i := 0; i < 63; i++ {
		odd.AddEdge(i, (i+1)%63)
	}
	res, err = Monitor(odd, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.IsBipartite {
		t.Error("odd ring reported bipartite")
	}
}

func TestMonitorTree(t *testing.T) {
	// Trees are always bipartite.
	g := NewGraph(31)
	for i := 0; i < 31; i++ {
		if l := 2*i + 1; l < 31 {
			g.AddEdge(i, l)
		}
		if r := 2*i + 2; r < 31 {
			g.AddEdge(i, r)
		}
	}
	res, err := Monitor(g, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsBipartite || res.EdgeCount != 30 {
		t.Errorf("tree: bipartite=%v edges=%d", res.IsBipartite, res.EdgeCount)
	}
	if res.Bill.Rounds <= 0 {
		t.Error("no rounds billed")
	}
}

func TestMonitorGridWithDiagonal(t *testing.T) {
	// A grid is bipartite until a diagonal is added.
	build := func(diag bool) *Graph {
		g := NewGraph(36)
		at := func(r, c int) int { return r*6 + c }
		for r := 0; r < 6; r++ {
			for c := 0; c < 6; c++ {
				if c+1 < 6 {
					g.AddEdge(at(r, c), at(r, c+1))
				}
				if r+1 < 6 {
					g.AddEdge(at(r, c), at(r+1, c))
				}
			}
		}
		if diag {
			g.AddEdge(at(0, 0), at(1, 1))
		}
		return g
	}
	res, err := Monitor(build(false), &Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsBipartite {
		t.Error("grid reported non-bipartite")
	}
	res, err = Monitor(build(true), &Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.IsBipartite {
		t.Error("grid+diagonal reported bipartite")
	}
}

func TestMonitorEmpty(t *testing.T) {
	res, err := Monitor(NewGraph(0), nil)
	if err != nil || !res.IsBipartite || res.NodeCount != 0 {
		t.Errorf("empty: %v %+v", err, res)
	}
}
