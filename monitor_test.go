package overlay

import (
	"testing"

	"overlay/internal/graphx"
	"overlay/internal/sim"
)

func TestMonitorCountsAndBipartite(t *testing.T) {
	// Even ring: bipartite.
	even := NewGraph(64)
	for i := 0; i < 64; i++ {
		even.AddEdge(i, (i+1)%64)
	}
	res, err := Monitor(even, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCount != 64 || res.EdgeCount != 64 {
		t.Errorf("counts = %d nodes %d edges, want 64/64", res.NodeCount, res.EdgeCount)
	}
	if !res.IsBipartite {
		t.Error("even ring reported non-bipartite")
	}

	// Odd ring: not bipartite.
	odd := NewGraph(63)
	for i := 0; i < 63; i++ {
		odd.AddEdge(i, (i+1)%63)
	}
	res, err = Monitor(odd, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.IsBipartite {
		t.Error("odd ring reported bipartite")
	}
}

func TestMonitorTree(t *testing.T) {
	// Trees are always bipartite.
	g := NewGraph(31)
	for i := 0; i < 31; i++ {
		if l := 2*i + 1; l < 31 {
			g.AddEdge(i, l)
		}
		if r := 2*i + 2; r < 31 {
			g.AddEdge(i, r)
		}
	}
	res, err := Monitor(g, &Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsBipartite || res.EdgeCount != 30 {
		t.Errorf("tree: bipartite=%v edges=%d", res.IsBipartite, res.EdgeCount)
	}
	if res.Bill.Rounds <= 0 {
		t.Error("no rounds billed")
	}
}

func TestMonitorGridWithDiagonal(t *testing.T) {
	// A grid is bipartite until a diagonal is added.
	build := func(diag bool) *Graph {
		g := NewGraph(36)
		at := func(r, c int) int { return r*6 + c }
		for r := 0; r < 6; r++ {
			for c := 0; c < 6; c++ {
				if c+1 < 6 {
					g.AddEdge(at(r, c), at(r, c+1))
				}
				if r+1 < 6 {
					g.AddEdge(at(r, c), at(r+1, c))
				}
			}
		}
		if diag {
			g.AddEdge(at(0, 0), at(1, 1))
		}
		return g
	}
	res, err := Monitor(build(false), &Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsBipartite {
		t.Error("grid reported non-bipartite")
	}
	res, err = Monitor(build(true), &Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.IsBipartite {
		t.Error("grid+diagonal reported bipartite")
	}
}

func TestMonitorEmpty(t *testing.T) {
	res, err := Monitor(NewGraph(0), nil)
	if err != nil || !res.IsBipartite || res.NodeCount != 0 {
		t.Errorf("empty: %v %+v", err, res)
	}
}

// TestNonTreeEdgesNormalizesReversedTreeEdges is the regression for
// the (hi,lo) misclassification: tree edges were inserted into the
// lookup set as-stored but looked up normalized, so a tree that emits
// reversed edge pairs had every such edge misclassified as a non-tree
// edge. The classifier must normalize on insert.
func TestNonTreeEdgesNormalizesReversedTreeEdges(t *testing.T) {
	und := graphx.NewGraph(4)
	und.AddEdge(0, 1)
	und.AddEdge(1, 2)
	und.AddEdge(2, 3)
	// The spanning tree covers every edge, but reports them reversed.
	reversed := [][2]int{{1, 0}, {2, 1}, {3, 2}}
	if got := nonTreeEdges(und, reversed); len(got) != 0 {
		t.Fatalf("reversed tree edges misclassified as non-tree: %v", got)
	}
	// With a genuine non-tree edge present, exactly it survives.
	und.AddEdge(3, 0)
	got := nonTreeEdges(und, reversed)
	if len(got) != 1 || got[0] != [2]int{0, 3} {
		t.Fatalf("non-tree classification = %v, want [[0 3]]", got)
	}
	// End to end: the classification feeds the odd-cycle check. C4 with
	// reversed tree edges is bipartite; closing a triangle is not.
	color := treeParityColors(4, 0, reversed)
	e := got[0]
	if color[e[0]] == color[e[1]] {
		t.Error("C4 closure reported an odd cycle")
	}
	und5 := graphx.NewGraph(3)
	und5.AddEdge(0, 1)
	und5.AddEdge(1, 2)
	und5.AddEdge(0, 2)
	tri := [][2]int{{1, 0}, {2, 1}}
	nt := nonTreeEdges(und5, tri)
	if len(nt) != 1 {
		t.Fatalf("triangle classification = %v, want one non-tree edge", nt)
	}
	c := treeParityColors(3, 0, tri)
	if c[nt[0][0]] != c[nt[0][1]] {
		t.Error("triangle's non-tree edge did not close an odd cycle")
	}
}

// TestMonitorBillIncludesAggregationGamma is the regression for the
// under-reported peak: the bill itemizes "γ≤lg" aggregation sweeps but
// never raised GlobalCapacity to that γ, so when the spanning-tree
// phase was cheaper the reported peak missed the aggregation load. The
// single-node graph pins it exactly: its spanning tree charges
// nothing, so the whole peak is the aggregations' γ = ⌈log₂ 1⌉ = 1.
func TestMonitorBillIncludesAggregationGamma(t *testing.T) {
	res, err := Monitor(NewGraph(1), &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bill.GlobalCapacity != 1 {
		t.Errorf("n=1 bill γ = %d, want the aggregation phase's 1", res.Bill.GlobalCapacity)
	}
	// General floor: the peak can never sit below the aggregation γ.
	g := NewGraph(36)
	for i := 0; i+1 < 36; i++ {
		g.AddEdge(i, i+1)
	}
	res, err = Monitor(g, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lg := sim.LogBound(36); res.Bill.GlobalCapacity < lg {
		t.Errorf("bill γ = %d below the charged aggregation γ %d", res.Bill.GlobalCapacity, lg)
	}
}
